//! End-to-end pipeline tests across all crates: generate → schedule →
//! predict → score.

use qpredict::core::{run_scheduling, run_wait_prediction, PredictorKind};
use qpredict::prelude::*;
use qpredict::sim::ActualEstimator;
use qpredict::sim::Simulation;
use qpredict::workload::synthetic;

/// Every algorithm/predictor combination completes every job, preserves
/// run times, and never starts a job before submission.
#[test]
fn full_grid_completes_and_preserves_jobs() {
    let wl = synthetic::toy(400, 32, 101);
    for alg in [Algorithm::Fcfs, Algorithm::Lwf, Algorithm::Backfill] {
        for kind in PredictorKind::ALL {
            let out = run_scheduling(&wl, alg, kind.clone());
            assert_eq!(out.metrics.n_jobs, 400, "{alg}/{kind}");
            assert!(out.metrics.utilization > 0.0 && out.metrics.utilization <= 1.0);
            assert!(out.metrics.mean_wait >= Dur::ZERO);
        }
    }
}

/// The schedule never oversubscribes the machine: at every instant the
/// sum of nodes of overlapping jobs fits.
#[test]
fn schedule_never_oversubscribes() {
    let wl = synthetic::toy(500, 24, 102);
    for alg in [Algorithm::Fcfs, Algorithm::Lwf, Algorithm::Backfill] {
        let result = Simulation::run(&wl, alg, &mut ActualEstimator);
        // Sweep: +nodes at start, -nodes at finish; finishes first at ties.
        let mut events: Vec<(Time, i64)> = Vec::with_capacity(wl.len() * 2);
        for o in &result.outcomes {
            let nodes = wl.job(o.id).nodes as i64;
            events.push((o.start, nodes));
            events.push((o.finish, -nodes));
        }
        events.sort_by_key(|&(t, delta)| (t, delta));
        let mut used = 0i64;
        for (t, delta) in events {
            used += delta;
            assert!(
                used <= wl.machine_nodes as i64,
                "{alg}: {used} nodes in use at {t}"
            );
            assert!(used >= 0, "{alg}: negative usage at {t}");
        }
    }
}

/// Identical runs are byte-identical (full determinism across the whole
/// stack, including learning predictors).
#[test]
fn entire_pipeline_is_deterministic() {
    let wl = synthetic::toy(300, 32, 103);
    for kind in [
        PredictorKind::Smith,
        PredictorKind::Gibbons,
        PredictorKind::DowneyMedian,
    ] {
        let a = run_scheduling(&wl, Algorithm::Backfill, kind.clone());
        let b = run_scheduling(&wl, Algorithm::Backfill, kind.clone());
        assert_eq!(a.metrics.mean_wait, b.metrics.mean_wait, "{kind}");
        assert_eq!(a.runtime_errors, b.runtime_errors, "{kind}");
    }
    let a = run_wait_prediction(&wl, Algorithm::Lwf, PredictorKind::Smith);
    let b = run_wait_prediction(&wl, Algorithm::Lwf, PredictorKind::Smith);
    assert_eq!(a.wait_errors, b.wait_errors);
}

/// The strongest end-to-end correctness check in the whole system:
/// FCFS wait-time predictions with perfect run-time knowledge are exact
/// for every single job (the paper omits FCFS from Table 4 for exactly
/// this reason).
#[test]
fn fcfs_oracle_wait_predictions_are_exact() {
    for seed in [104, 105, 106] {
        let wl = synthetic::toy(350, 16, seed);
        let out = run_wait_prediction(&wl, Algorithm::Fcfs, PredictorKind::Actual);
        assert_eq!(out.wait_errors.count(), 350);
        assert_eq!(
            out.wait_errors.mean_abs_error_min(),
            0.0,
            "seed {seed}: forecast diverged from the engine"
        );
    }
}

/// Wait predictions and scheduling work on all four (truncated) paper
/// workloads, whatever characteristics they record.
#[test]
fn all_paper_sites_run_the_pipeline() {
    for name in ["ANL", "CTC", "SDSC95", "SDSC96"] {
        let mut spec = synthetic::sites::spec_by_name(name).unwrap();
        spec.n_jobs = 250;
        spec.n_users = 12;
        let wl = synthetic::generate(&spec);
        let sched = run_scheduling(&wl, Algorithm::Backfill, PredictorKind::Smith);
        assert_eq!(sched.metrics.n_jobs, 250, "{name}");
        let wait = run_wait_prediction(&wl, Algorithm::Lwf, PredictorKind::Gibbons);
        assert_eq!(wait.wait_errors.count(), 250, "{name}");
    }
}

/// Truncating a workload must not change the outcome of its prefix under
/// FCFS (prefix property: FCFS decisions never depend on later arrivals).
#[test]
fn fcfs_prefix_property() {
    let wl = synthetic::toy(300, 32, 107);
    let full = Simulation::run(&wl, Algorithm::Fcfs, &mut ActualEstimator);
    let half = wl.truncated(150);
    let part = Simulation::run(&half, Algorithm::Fcfs, &mut ActualEstimator);
    for o in &part.outcomes {
        assert_eq!(o.start, full.outcomes[o.id.index()].start);
    }
}

/// The compressed workload carries double the offered load and (at these
/// utilizations) no lower mean waits under the same scheduler.
#[test]
fn compression_increases_pressure() {
    let wl = synthetic::toy(600, 16, 108);
    let fast = qpredict::workload::compress_interarrivals(&wl, 2.0);
    let base = run_scheduling(&wl, Algorithm::Backfill, PredictorKind::Actual);
    let comp = run_scheduling(&fast, Algorithm::Backfill, PredictorKind::Actual);
    assert!(
        comp.metrics.mean_wait >= base.metrics.mean_wait,
        "compression should not reduce waits: {:?} vs {:?}",
        comp.metrics.mean_wait,
        base.metrics.mean_wait
    );
    assert!(comp.metrics.utilization_window > base.metrics.utilization_window);
}
