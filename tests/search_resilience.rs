//! Soak/chaos tests for the supervised, resumable GA template search.
//!
//! Three claims are exercised end to end, through the public facade:
//!
//! 1. **Kill-and-resume identity** — a search killed after any
//!    generation and resumed from its checkpoint produces the same best
//!    template set, fitness trace, and evaluation count as an
//!    uninterrupted run, byte for byte.
//! 2. **Chaos absorption** — with evaluator faults (panics, hangs,
//!    typed errors) injected at material rates, the search still
//!    completes, every injected fault is accounted for in
//!    [`SearchHealth`], and retryable-only fault storms converge to the
//!    *same* result as a fault-free run.
//! 3. **Corruption detection** — a damaged checkpoint is rejected with
//!    a typed error, never a panic or a silently-wrong resume.

use qpredict::search::{
    resume_supervised, search_supervised, CheckpointError, CheckpointPolicy, GaConfig,
    PredictionWorkload, SearchError, SupervisedResult, SupervisorConfig, Target,
};
use qpredict::sim::{Algorithm, FaultPlan};
use qpredict::workload::synthetic::toy;
use qpredict::workload::Workload;

const GENERATIONS: usize = 6;

fn fixture(seed: u64) -> (Workload, PredictionWorkload, GaConfig) {
    let wl = toy(120, 32, seed);
    let pw = PredictionWorkload::build(&wl, Target::WaitPrediction(Algorithm::Backfill), 4);
    let cfg = GaConfig {
        population: 8,
        generations: GENERATIONS,
        threads: 2,
        seed: seed.wrapping_mul(97) + 13,
        ..GaConfig::default()
    };
    (wl, pw, cfg)
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qpredict-resilience-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_identical(a: &SupervisedResult, b: &SupervisedResult, what: &str) {
    assert_eq!(a.result.best, b.result.best, "{what}: best set diverged");
    assert_eq!(
        a.result.error_history, b.result.error_history,
        "{what}: fitness trace diverged"
    );
    assert_eq!(
        a.result.evaluations, b.result.evaluations,
        "{what}: evaluation count diverged"
    );
}

/// Kill at generation 1, the midpoint, and last−1; resume each and
/// demand byte-identity with the uninterrupted run.
#[test]
fn kill_and_resume_is_bit_identical_at_any_generation() {
    let (wl, pw, cfg) = fixture(71);
    let sup = SupervisorConfig {
        threads: cfg.threads,
        ..SupervisorConfig::default()
    };
    let reference =
        search_supervised(&wl, &pw, &cfg, &sup, None).expect("uninterrupted run is clean");

    for kill_at in [1, GENERATIONS / 2, GENERATIONS - 1] {
        let dir = tmpdir(&format!("kill-{kill_at}"));
        let policy = CheckpointPolicy::every_generation(&dir);

        // The "killed" run: same config but stopped after `kill_at`
        // generations, checkpointing as it goes.
        let short = GaConfig {
            generations: kill_at,
            ..cfg.clone()
        };
        search_supervised(&wl, &pw, &short, &sup, Some(&policy)).expect("partial run is clean");

        // Resume to the full horizon.
        let resumed =
            resume_supervised(&wl, &pw, &cfg, &sup, &policy).expect("resume from checkpoint");
        assert_eq!(resumed.resumed_from, Some(kill_at), "resume point");
        assert_eq!(resumed.health.resumes, 1);
        assert_identical(&resumed, &reference, &format!("killed at {kill_at}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Retryable-only chaos (panics and hangs at a combined ~8% rate) must
/// not change the search outcome at all: every failure is retried on a
/// per-attempt derived stream until it succeeds, so the fitness signal
/// the GA sees is identical to a fault-free run.
#[test]
fn retryable_chaos_converges_to_the_faultless_result() {
    let (wl, pw, cfg) = fixture(72);
    let clean_sup = SupervisorConfig {
        threads: cfg.threads,
        ..SupervisorConfig::default()
    };
    let chaos_sup = SupervisorConfig {
        threads: cfg.threads,
        max_retries: 10,
        faults: Some(FaultPlan {
            eval_panic_prob: 0.05,
            eval_hang_prob: 0.03,
            ..FaultPlan::new(4242)
        }),
        ..SupervisorConfig::default()
    };

    let clean = search_supervised(&wl, &pw, &cfg, &clean_sup, None).expect("clean run");
    let chaotic = search_supervised(&wl, &pw, &cfg, &chaos_sup, None).expect("chaotic run");

    assert_identical(&chaotic, &clean, "retryable chaos");
    assert!(
        chaotic.health.injected_faults > 0,
        "chaos must actually fire at these rates: {}",
        chaotic.health.summary()
    );
    assert_eq!(chaotic.health.quarantined, 0, "retries must absorb all");
    assert_eq!(clean.health.failures(), 0);
}

/// Full chaos — panics, hangs, *and* fatal evaluator errors at ≥5%
/// combined — still completes, quarantines the unlucky individuals, and
/// accounts for every injected fault by cause.
#[test]
fn full_chaos_completes_with_exact_fault_accounting() {
    let (wl, pw, cfg) = fixture(73);
    let sup = SupervisorConfig {
        threads: cfg.threads,
        faults: Some(FaultPlan::eval_chaos(99, 0.08)),
        ..SupervisorConfig::default()
    };
    let out = search_supervised(&wl, &pw, &cfg, &sup, None).expect("chaos run completes");
    let h = &out.health;
    assert_eq!(out.result.error_history.len(), GENERATIONS);
    assert!(out.result.best_error_min.is_finite());
    // The evaluator itself never fails on this workload, so every
    // failure must trace back to an injected fault — exact accounting.
    assert_eq!(
        h.injected_faults,
        h.panics + h.budget_exhausted + h.eval_errors,
        "accounting mismatch: {}",
        h.summary()
    );
    assert!(h.injected_faults > 0, "chaos must fire: {}", h.summary());
    assert!(
        h.eval_errors == 0 || h.quarantined > 0,
        "fatal injected errors must quarantine: {}",
        h.summary()
    );
    assert!(h.attempts >= (cfg.population * GENERATIONS) as u64);
}

/// Chaos is deterministic in the fault seed: two identical chaotic runs
/// agree on the result *and* on every health counter.
#[test]
fn chaos_is_seed_deterministic() {
    let (wl, pw, cfg) = fixture(74);
    let sup = SupervisorConfig {
        threads: cfg.threads,
        faults: Some(FaultPlan::eval_chaos(7, 0.06)),
        ..SupervisorConfig::default()
    };
    let a = search_supervised(&wl, &pw, &cfg, &sup, None).expect("run a");
    let b = search_supervised(&wl, &pw, &cfg, &sup, None).expect("run b");
    assert_identical(&a, &b, "chaos determinism");
    assert_eq!(a.health, b.health, "health counters diverged");

    // Thread count must not change the outcome either (work stealing
    // changes interleaving, not results).
    let serial_sup = SupervisorConfig {
        threads: 1,
        ..sup.clone()
    };
    let c = search_supervised(&wl, &pw, &cfg, &serial_sup, None).expect("serial run");
    assert_identical(&a, &c, "thread-count invariance");
}

/// Kill-and-resume composes with chaos: resuming a chaotic run yields
/// the same result as the uninterrupted chaotic run.
#[test]
fn resume_under_chaos_is_bit_identical() {
    let (wl, pw, cfg) = fixture(75);
    let sup = SupervisorConfig {
        threads: cfg.threads,
        faults: Some(FaultPlan::eval_chaos(11, 0.05)),
        ..SupervisorConfig::default()
    };
    let reference = search_supervised(&wl, &pw, &cfg, &sup, None).expect("reference");

    let dir = tmpdir("chaos-resume");
    let policy = CheckpointPolicy::every_generation(&dir);
    let short = GaConfig {
        generations: 2,
        ..cfg.clone()
    };
    search_supervised(&wl, &pw, &short, &sup, Some(&policy)).expect("partial");
    let resumed = resume_supervised(&wl, &pw, &cfg, &sup, &policy).expect("resume");
    assert_identical(&resumed, &reference, "chaotic resume");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted checkpoint is detected (checksum) and rejected with a
/// typed error; resume never runs on damaged state.
#[test]
fn corrupted_checkpoint_is_rejected_with_typed_error() {
    let (wl, pw, cfg) = fixture(76);
    let sup = SupervisorConfig {
        threads: 1,
        ..SupervisorConfig::default()
    };
    let dir = tmpdir("corrupt");
    let policy = CheckpointPolicy::every_generation(&dir);
    let short = GaConfig {
        generations: 2,
        ..cfg.clone()
    };
    search_supervised(&wl, &pw, &short, &sup, Some(&policy)).expect("partial run");

    // Flip one payload byte: 0 -> 1 in a population line.
    let file = policy.file();
    let text = std::fs::read_to_string(&file).expect("checkpoint exists");
    let idx = text.find("\npop ").expect("population lines present") + 5;
    let mut bytes = text.into_bytes();
    bytes[idx] = if bytes[idx] == b'0' { b'1' } else { b'0' };
    std::fs::write(&file, &bytes).expect("rewrite");

    let err = resume_supervised(&wl, &pw, &cfg, &sup, &policy).unwrap_err();
    assert!(
        matches!(
            err,
            SearchError::Checkpoint(CheckpointError::ChecksumMismatch { .. })
        ),
        "expected checksum mismatch, got: {err}"
    );

    // A truncated file is equally rejected.
    let text = std::fs::read_to_string(&file).expect("checkpoint still readable");
    std::fs::write(&file, &text[..text.len() / 2]).expect("truncate");
    let err = resume_supervised(&wl, &pw, &cfg, &sup, &policy).unwrap_err();
    assert!(
        matches!(err, SearchError::Checkpoint(_)),
        "expected checkpoint error, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A checkpoint from a different configuration refuses to resume: the
/// fingerprint names the mismatched field instead of silently blending
/// two incompatible runs.
#[test]
fn foreign_checkpoint_is_refused_by_fingerprint() {
    let (wl, pw, cfg) = fixture(77);
    let sup = SupervisorConfig::default();
    let dir = tmpdir("foreign");
    let policy = CheckpointPolicy::every_generation(&dir);
    let short = GaConfig {
        generations: 1,
        ..cfg.clone()
    };
    search_supervised(&wl, &pw, &short, &sup, Some(&policy)).expect("partial run");

    let other = GaConfig {
        population: cfg.population + 2,
        ..cfg.clone()
    };
    let err = resume_supervised(&wl, &pw, &other, &sup, &policy).unwrap_err();
    assert!(
        matches!(
            &err,
            SearchError::Checkpoint(CheckpointError::ConfigMismatch { field, .. })
                if *field == "population"
        ),
        "expected population mismatch, got: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
