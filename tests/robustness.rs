//! End-to-end robustness tests: lenient SWF recovery over a corpus of
//! malformed traces, deterministic fault injection, the engine watchdog,
//! and the CLI's diagnostic exit codes.

use std::process::Command;

use qpredict::sim::{ActualEstimator, Algorithm, FaultPlan, SimError, SimLimits, Simulation};
use qpredict::workload::{swf, Dur, IngestPolicy, JobBuilder, JobId, SkipCategory, Time, Workload};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qpredict"))
}

/// A trace exercising every corruption category the lenient parser
/// recovers from. Line numbers (1-based, comments included):
///
/// | line | content                         | fate                    |
/// |------|---------------------------------|-------------------------|
/// | 1    | comment                         | ignored                 |
/// | 2    | good job 1, submit 100          | accepted                |
/// | 3    | `abc` in the run-time field     | skip: non-integer       |
/// | 4    | four fields                     | skip: too few fields    |
/// | 5    | duplicate of job 1              | skip: duplicate job id  |
/// | 6    | submit 50 after submit 100      | skip: non-monotonic     |
/// | 7    | submit -7                       | skip: negative submit   |
/// | 8    | run time 0 (cancelled)          | skip: cancelled record  |
/// | 9    | good job 9 with 20 fields       | accepted, warn: trailing|
const CORRUPT_TRACE: &str = "\
; malformed-trace corpus
1 100 0 60 4 -1 -1 4 120 -1 1 1 -1 -1 -1 -1 1 -1
2 110 0 abc 4 -1 -1 4 120 -1 1 1 -1 -1 -1 -1 1 -1
3 120 0 60
1 130 0 60 4 -1 -1 4 120 -1 1 1 -1 -1 -1 -1 1 -1
5 50 0 60 4 -1 -1 4 120 -1 1 1 -1 -1 -1 -1 1 -1
6 -7 0 60 4 -1 -1 4 120 -1 1 1 -1 -1 -1 -1 1 -1
7 140 0 0 4 -1 -1 4 120 -1 1 1 -1 -1 -1 -1 1 -1
9 150 0 60 4 -1 -1 4 120 -1 1 1 -1 -1 -1 -1 1 -1 0 0
";

#[test]
fn lenient_ingestion_recovers_the_malformed_corpus() {
    let (wl, report) = swf::parse_with("corpus", 8, CORRUPT_TRACE, IngestPolicy::Lenient)
        .expect("lenient ingestion never fails");
    assert_eq!(wl.len(), 2, "jobs 1 and 9 survive");
    assert!(wl.validate().is_ok());

    assert_eq!(report.data_lines, 8);
    assert_eq!(report.records_ok, 2);
    assert_eq!(report.count(SkipCategory::NonIntegerField), 1);
    assert_eq!(report.count(SkipCategory::TooFewFields), 1);
    assert_eq!(report.count(SkipCategory::DuplicateJobId), 1);
    assert_eq!(report.count(SkipCategory::NonMonotonicSubmit), 1);
    assert_eq!(report.count(SkipCategory::NegativeSubmit), 1);
    assert_eq!(report.count(SkipCategory::CancelledRecord), 1);
    assert_eq!(report.count(SkipCategory::TrailingFields), 1);
    assert_eq!(report.skipped_total(), 6);
    assert_eq!(report.warnings_total(), 1);
    // Every skipped line is enumerated, in order.
    assert_eq!(report.skipped_lines, vec![3, 4, 5, 6, 7, 8]);
    let summary = report.summary();
    for cat in SkipCategory::ALL {
        assert!(summary.contains(cat.name()), "summary must mention {cat}");
    }
}

#[test]
fn strict_ingestion_stops_at_the_first_malformed_line() {
    let err = swf::parse_with("corpus", 8, CORRUPT_TRACE, IngestPolicy::Strict)
        .expect_err("strict ingestion must fail");
    let msg = err.to_string();
    assert!(msg.contains("line 3"), "wrong line in {msg:?}");
    assert!(
        msg.contains("\"abc\""),
        "offending token missing in {msg:?}"
    );
    assert!(msg.contains("field 4"), "field index missing in {msg:?}");
    assert!(msg.contains("run time"), "field name missing in {msg:?}");
}

#[test]
fn watchdog_converts_a_stalled_schedule_into_an_error() {
    // A 16-node job on an 8-node machine can never start: without the
    // guard this deadlocks the queue silently; with it, the simulation
    // reports a stall.
    let mut wl = Workload::new("stall", 8);
    wl.jobs = vec![
        JobBuilder::new()
            .submit(Time(0))
            .nodes(4)
            .runtime(Dur(30))
            .build(JobId(0)),
        JobBuilder::new()
            .submit(Time(5))
            .nodes(16)
            .runtime(Dur(30))
            .build(JobId(1)),
    ];
    let err = Simulation::run_guarded(
        &wl,
        Algorithm::Fcfs,
        &mut ActualEstimator,
        SimLimits::default(),
    )
    .expect_err("oversized job must stall the queue");
    match err {
        SimError::Stalled { queued, .. } => assert_eq!(queued, 1),
        other => panic!("expected a stall, got {other}"),
    }
}

#[test]
fn cli_fault_injection_is_deterministic_in_the_seed() {
    let run = |seed: &str| {
        let out = bin()
            .args([
                "simulate",
                "toy",
                "--jobs",
                "250",
                "--nodes",
                "32",
                "--predictor",
                "fallback",
                "--fault-seed",
                seed,
                "--fault-pred-noise",
                "0.25",
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let a = run("42");
    let b = run("42");
    assert_eq!(a, b, "identical seeds must give byte-identical reports");
    let text = String::from_utf8_lossy(&a);
    assert!(text.contains("degradation events"), "{text}");
    assert!(text.contains("faults injected (seed 42)"), "{text}");
    // The noise must actually corrupt something.
    assert!(!text.contains("0 scaled, 0 inverted, 0 dropped"), "{text}");
    let c = run("43");
    assert_ne!(a, c, "a different seed must perturb the schedule");
}

#[test]
fn cli_lenient_ingest_reports_and_recovers() {
    let dir = std::env::temp_dir().join("qpredict_robustness_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corrupt.swf");
    std::fs::write(&path, CORRUPT_TRACE).unwrap();

    // Strict (the default) refuses the trace.
    let out = bin()
        .args(["analyze", path.to_str().unwrap(), "--nodes", "8"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 3"), "{err}");

    // Lenient recovers and reports what it skipped.
    let out = bin()
        .args([
            "analyze",
            path.to_str().unwrap(),
            "--nodes",
            "8",
            "--ingest",
            "lenient",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("recovered under lenient ingestion"), "{err}");
    assert!(err.contains("duplicate job id"), "{err}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("requests: 2"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_flag_errors_exit_two_with_pointed_messages() {
    let cases: &[(&[&str], &str)] = &[
        (&["simulate", "toy", "--nodes"], "missing value for --nodes"),
        (
            &["simulate", "toy", "--nodes", "many"],
            "invalid value \"many\" for --nodes",
        ),
        (
            &["simulate", "toy", "--alg", "sjf"],
            "invalid value \"sjf\" for --alg",
        ),
        (
            &["simulate", "toy", "--ingest", "sloppy"],
            "invalid value \"sloppy\" for --ingest",
        ),
        (
            &["simulate", "toy", "--fault-pred-noise", "2"],
            "for --fault-pred-noise",
        ),
        (
            &["simulate", "toy", "--frobnicate"],
            "unknown flag \"--frobnicate\"",
        ),
    ];
    for (args, needle) in cases {
        let out = bin().args(*args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(needle), "args {args:?}: {err}");
    }
}

#[test]
fn library_fault_plans_survive_a_guarded_run() {
    // Trace faults plus the guard: the mutated trace must still complete
    // under the watchdog with no invariant violations.
    let wl = qpredict::workload::synthetic::toy(300, 16, 7);
    let plan = FaultPlan {
        cancel_prob: 0.1,
        fail_prob: 0.1,
        delay_prob: 0.2,
        ..FaultPlan::new(11)
    };
    let (faulted, report) = plan.apply_to_workload(&wl);
    assert!(report.total() > 0);
    let run = Simulation::run_guarded(
        &faulted,
        Algorithm::EasyBackfill,
        &mut ActualEstimator,
        SimLimits::default(),
    )
    .expect("faulted trace still completes");
    assert!(run.violations.is_empty(), "{:?}", run.violations);
    assert_eq!(run.result.metrics.n_jobs, 300);
}
