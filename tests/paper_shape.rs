//! Shape tests: the qualitative findings of the paper must hold on the
//! synthetic stand-in workloads at test scale.

use qpredict::core::{run_scheduling, run_wait_prediction, PredictorKind};
use qpredict::prelude::*;
use qpredict::workload::synthetic;

fn site(name: &str, jobs: usize) -> Workload {
    let mut spec = synthetic::sites::spec_by_name(name).unwrap();
    spec.n_jobs = jobs;
    spec.n_users = (jobs / 25).max(6);
    synthetic::generate(&spec)
}

/// Table 4's headline: with perfect run-time predictions, LWF has a large
/// built-in wait-prediction error and backfill a small one.
#[test]
fn builtin_error_lwf_much_larger_than_backfill() {
    let wl = site("ANL", 1500);
    let lwf = run_wait_prediction(&wl, Algorithm::Lwf, PredictorKind::Actual);
    let bf = run_wait_prediction(&wl, Algorithm::Backfill, PredictorKind::Actual);
    let lwf_pct = lwf.wait_errors.pct_of_mean_actual();
    let bf_pct = bf.wait_errors.pct_of_mean_actual();
    assert!(
        lwf_pct > 2.0 * bf_pct,
        "LWF built-in error ({lwf_pct:.0}%) should dwarf backfill's ({bf_pct:.0}%)"
    );
    assert!(
        bf_pct < 25.0,
        "backfill built-in error should be small, got {bf_pct:.0}%"
    );
}

/// Tables 5 vs 6: the Smith predictor's wait predictions beat maximum
/// run times decisively.
#[test]
fn smith_wait_predictions_beat_max_runtimes() {
    let wl = site("ANL", 1500);
    for alg in [Algorithm::Fcfs, Algorithm::Backfill] {
        let maxrt = run_wait_prediction(&wl, alg, PredictorKind::MaxRuntime);
        let smith = run_wait_prediction(&wl, alg, PredictorKind::Smith);
        assert!(
            smith.wait_errors.mean_abs_error_min() < maxrt.wait_errors.mean_abs_error_min(),
            "{alg}: smith {:.1} should beat maxrt {:.1}",
            smith.wait_errors.mean_abs_error_min(),
            maxrt.wait_errors.mean_abs_error_min()
        );
    }
}

/// Section 2's premise: history-based run-time predictions are far more
/// accurate than user limits, and Smith's searched templates are at
/// least competitive with the fixed-template baselines.
#[test]
fn runtime_prediction_accuracy_ordering() {
    let wl = site("ANL", 2000);
    let err = |kind: PredictorKind| {
        run_wait_prediction(&wl, Algorithm::Fcfs, kind)
            .runtime_errors
            .mean_abs_error_min()
    };
    let smith = err(PredictorKind::Smith);
    let maxrt = err(PredictorKind::MaxRuntime);
    let downey_avg = err(PredictorKind::DowneyAverage);
    assert!(
        smith < 0.5 * maxrt,
        "smith ({smith:.1} min) should be far below max run times ({maxrt:.1} min)"
    );
    assert!(
        smith < downey_avg,
        "smith ({smith:.1}) should beat Downey's conditional average ({downey_avg:.1})"
    );
}

/// Section 4: utilization barely moves across predictors, for both
/// algorithms, on every site.
#[test]
fn utilization_is_predictor_insensitive() {
    for name in ["ANL", "SDSC96"] {
        let wl = site(name, 1200);
        for alg in [Algorithm::Lwf, Algorithm::Backfill] {
            let utils: Vec<f64> = [
                PredictorKind::Actual,
                PredictorKind::MaxRuntime,
                PredictorKind::Smith,
                PredictorKind::Gibbons,
            ]
            .into_iter()
            .map(|k| run_scheduling(&wl, alg, k).metrics.utilization_window)
            .collect();
            let spread = utils.iter().cloned().fold(f64::MIN, f64::max)
                - utils.iter().cloned().fold(f64::MAX, f64::min);
            assert!(
                spread < 0.06,
                "{name}/{alg}: utilization spread {spread:.3} too wide ({utils:?})"
            );
        }
    }
}

/// Table 10: LWF produces lower mean waits than backfill when run times
/// are known exactly.
#[test]
fn lwf_beats_backfill_on_mean_wait_with_oracle() {
    // At test scale the low-load sites have waits of a few minutes and
    // the two algorithms can land within noise of each other, so allow a
    // small tolerance; the full-scale `paper` run shows the clean
    // ordering.
    for name in ["ANL", "CTC"] {
        let wl = site(name, 1500);
        let lwf = run_scheduling(&wl, Algorithm::Lwf, PredictorKind::Actual);
        let bf = run_scheduling(&wl, Algorithm::Backfill, PredictorKind::Actual);
        assert!(
            lwf.metrics.mean_wait.as_secs_f64() <= 1.15 * bf.metrics.mean_wait.as_secs_f64(),
            "{name}: LWF {:?} should not exceed backfill {:?} by >15%",
            lwf.metrics.mean_wait,
            bf.metrics.mean_wait
        );
    }
}

/// Tables 10 vs 11 (backfill): accurate run times give lower mean waits
/// than loose maximum run times.
#[test]
fn oracle_backfill_beats_maxrt_backfill() {
    let wl = site("ANL", 1800);
    let oracle = run_scheduling(&wl, Algorithm::Backfill, PredictorKind::Actual);
    let maxrt = run_scheduling(&wl, Algorithm::Backfill, PredictorKind::MaxRuntime);
    assert!(
        oracle.metrics.mean_wait <= maxrt.metrics.mean_wait,
        "oracle {:?} vs maxrt {:?}",
        oracle.metrics.mean_wait,
        maxrt.metrics.mean_wait
    );
}

/// The SDSC workloads derive per-queue maximum run times; those maxima
/// must upper-bound (almost) every run time in the queue, making the
/// max-runtime predictor a systematic overestimator there.
#[test]
fn sdsc_derived_limits_overestimate() {
    let wl = site("SDSC95", 1000);
    let out = run_wait_prediction(&wl, Algorithm::Fcfs, PredictorKind::MaxRuntime);
    assert!(
        out.runtime_errors.mean_bias_min() > 0.0,
        "derived queue limits must overpredict on average"
    );
}
