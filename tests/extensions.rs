//! Integration tests for the beyond-the-paper extensions: state-based
//! wait prediction, warm-started predictors, EASY backfill, wait-time
//! intervals, and the schedule timeline.

use qpredict::core::{
    forecast_start_interval, run_scheduling, run_state_wait_prediction, run_wait_prediction,
    run_wait_prediction_warm, PredictorKind,
};
use qpredict::predict::RunTimePredictor;
use qpredict::prelude::*;
use qpredict::sim::{ActualEstimator, SimHooks, Simulation, Snapshot, Timeline};
use qpredict::workload::synthetic;

/// The state-based predictor runs end-to-end on every site and produces
/// one prediction per job, deterministically.
#[test]
fn state_wait_prediction_covers_all_sites() {
    for name in ["ANL", "SDSC95"] {
        let mut spec = synthetic::sites::spec_by_name(name).unwrap();
        spec.n_jobs = 400;
        spec.n_users = 16;
        let wl = synthetic::generate(&spec);
        let a = run_state_wait_prediction(&wl, Algorithm::Lwf, PredictorKind::Smith);
        let b = run_state_wait_prediction(&wl, Algorithm::Lwf, PredictorKind::Smith);
        assert_eq!(a.wait_errors.count(), 400, "{name}");
        assert_eq!(a.wait_errors, b.wait_errors, "{name}: nondeterministic");
    }
}

/// Simulation-based wait prediction beats the state-based method on a
/// loaded machine (the repo's measured answer to the paper's future-work
/// conjecture, checked here at test scale).
#[test]
fn simulation_beats_state_on_loaded_machine() {
    let mut spec = synthetic::sites::spec_by_name("ANL").unwrap();
    spec.n_jobs = 1200;
    spec.n_users = 30;
    let wl = synthetic::generate(&spec);
    let sim = run_wait_prediction(&wl, Algorithm::Backfill, PredictorKind::Smith);
    let state = run_state_wait_prediction(&wl, Algorithm::Backfill, PredictorKind::Smith);
    assert!(
        sim.wait_errors.mean_abs_error_min() <= state.wait_errors.mean_abs_error_min(),
        "nested simulation ({:.1}) should beat state lookup ({:.1})",
        sim.wait_errors.mean_abs_error_min(),
        state.wait_errors.mean_abs_error_min()
    );
}

/// Warm-starting never sees *fewer* predictions than jobs, and the
/// suffix split preserves job identity.
#[test]
fn warm_start_accounting() {
    let wl = synthetic::toy(500, 24, 501);
    let out = run_wait_prediction_warm(&wl, Algorithm::Lwf, PredictorKind::Gibbons, 250);
    assert_eq!(out.wait_errors.count(), 250);
    assert!(out.runtime_errors.count() > 0);
}

/// EASY backfill completes every job and (on these workloads) does not
/// produce a worse mean wait than conservative backfill under identical
/// oracle estimates.
#[test]
fn easy_backfill_end_to_end() {
    let wl = synthetic::toy(800, 32, 502);
    let cons = run_scheduling(&wl, Algorithm::Backfill, PredictorKind::Actual);
    let easy = run_scheduling(&wl, Algorithm::EasyBackfill, PredictorKind::Actual);
    assert_eq!(easy.metrics.n_jobs, 800);
    assert!(
        easy.metrics.mean_wait.as_secs_f64() <= 1.3 * cons.metrics.mean_wait.as_secs_f64(),
        "EASY {:?} should be comparable to conservative {:?}",
        easy.metrics.mean_wait,
        cons.metrics.mean_wait
    );
}

/// Wait intervals from a live snapshot bracket the point forecast and
/// widen with predictor uncertainty.
#[test]
fn wait_intervals_bracket_and_widen() {
    struct Grab(Option<Snapshot>);
    impl SimHooks for Grab {
        fn after_submit(&mut self, snap: &Snapshot, _job: &Job) {
            // Take the snapshot with the deepest queue seen so far.
            if self.0.as_ref().map_or(0, |s| s.queued.len()) < snap.queued.len() {
                self.0 = Some(snap.clone());
            }
        }
    }
    let wl = synthetic::toy(600, 16, 503);
    let mut grab = Grab(None);
    let mut est = qpredict::sim::MaxRuntimeEstimator::from_workload(&wl);
    Simulation::new(&wl, Algorithm::Backfill).run_with_hooks(&mut est, &mut grab);
    let snap = grab.0.expect("some queue formed");
    assert!(snap.queued.len() >= 2, "need a queue to test intervals");
    let target = snap.queued.last().unwrap().0;

    let mut predictor = PredictorKind::Smith.build(&wl);
    for j in wl.jobs.iter().take(wl.len() / 2) {
        RunTimePredictor::on_complete(&mut predictor, j);
    }
    let iv = forecast_start_interval(
        &wl,
        Algorithm::Backfill,
        &snap,
        |j, e| j.limit_or_max().min(Dur::hours(48)).max(e + Dur::SECOND),
        |j, e| predictor.predict(j, e),
        target,
    );
    assert!(iv.optimistic <= iv.expected && iv.expected <= iv.pessimistic);
    assert!(iv.optimistic >= snap.now);
}

/// Timeline analysis agrees with metrics across algorithms and exports
/// parseable CSV.
#[test]
fn timeline_integration() {
    let wl = synthetic::toy(300, 16, 504);
    let r = Simulation::run(&wl, Algorithm::Lwf, &mut ActualEstimator);
    let t = Timeline::build(&wl, &r.outcomes);
    assert!(t.is_feasible());
    let csv = t.jobs_csv();
    assert_eq!(csv.lines().count(), 301); // header + 300 jobs
    for line in csv.lines().skip(1) {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 4);
        fields[1].parse::<i64>().unwrap();
    }
}
