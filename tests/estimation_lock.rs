//! Regression lock for the estimation-layer refactor: scheduler and
//! wait-time experiment outputs must stay **bit-identical** to the
//! pre-refactor implementation for fixed seeds.
//!
//! The expected fingerprints were captured at the pre-refactor commit by
//! `examples/lock_capture.rs` (FNV-1a over `f64::to_bits` of every
//! metric and error statistic, so equality holds to the last ulp). The
//! locked template set deliberately exercises every estimator path:
//! all three regression transform spaces, relative (ratio) values,
//! capped history (the eviction path), and elapsed-time conditioning.
//!
//! If one of these assertions ever fails, the change was NOT
//! behavior-preserving: either fix it or consciously re-capture.

use qpredict_core::{run_scheduling, run_wait_prediction, PredictorKind};
use qpredict_predict::{ErrorStats, EstimatorKind, Template, TemplateSet};
use qpredict_sim::{Algorithm, Metrics};
use qpredict_workload::synthetic::toy;
use qpredict_workload::Characteristic as C;

fn fnv(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn fp_stats(e: &ErrorStats) -> u64 {
    fnv([
        e.count(),
        e.mean_abs_error_min().to_bits(),
        e.mean_bias_min().to_bits(),
        e.mean_actual_min().to_bits(),
        e.rmse_min().to_bits(),
        e.max_abs_error_min().to_bits(),
    ])
}

fn fp_metrics(m: &Metrics) -> u64 {
    fnv([
        m.n_jobs as u64,
        m.mean_wait.seconds() as u64,
        m.median_wait.seconds() as u64,
        m.max_wait.seconds() as u64,
        m.makespan.seconds() as u64,
        m.utilization.to_bits(),
        m.utilization_window.to_bits(),
        m.mean_bounded_slowdown.to_bits(),
        m.total_work_node_s.to_bits(),
    ])
}

fn lock_set() -> TemplateSet {
    TemplateSet::new(vec![
        Template::mean_over(&[C::User, C::Executable]).with_node_range(1),
        Template::mean_over(&[C::User]).with_estimator(EstimatorKind::LinearRegression),
        Template::mean_over(&[C::User])
            .with_estimator(EstimatorKind::InverseRegression)
            .relative(),
        Template::mean_over(&[C::Executable])
            .with_estimator(EstimatorKind::LogRegression)
            .with_max_history(8),
        Template::mean_over(&[]).relative().with_max_history(4),
        Template::mean_over(&[C::User]).with_rtime(),
    ])
}

fn kind_for(label: &str) -> PredictorKind {
    match label {
        "actual" => PredictorKind::Actual,
        "maxrt" => PredictorKind::MaxRuntime,
        "smith" => PredictorKind::Smith,
        "smith-lock" => PredictorKind::SmithWith(lock_set()),
        "gibbons" => PredictorKind::Gibbons,
        "downey-avg" => PredictorKind::DowneyAverage,
        other => panic!("unknown predictor label {other}"),
    }
}

fn alg_for(label: &str) -> Algorithm {
    match label {
        "LWF" => Algorithm::Lwf,
        "Backfill" => Algorithm::Backfill,
        "EASY" => Algorithm::EasyBackfill,
        "FCFS" => Algorithm::Fcfs,
        other => panic!("unknown algorithm label {other}"),
    }
}

/// (algorithm, predictor, metrics fingerprint, runtime-error fingerprint)
/// for `run_scheduling` over `toy(300, 32, 41)` — captured pre-refactor.
const SCHEDULING_LOCK: [(&str, &str, u64, u64); 18] = [
    ("LWF", "actual", 0x09ca25c66f116e48, 0x3a93bcf178330cac),
    ("LWF", "maxrt", 0x5c64ceeaf84294e4, 0x8a1ac8c20590c28a),
    ("LWF", "smith", 0x2bec1541f8a043d8, 0x5b06411fc8cc9e08),
    ("LWF", "smith-lock", 0x754bb3f9d9b9b4e8, 0x60438dee45c76b36),
    ("LWF", "gibbons", 0x3c6272765c8718bb, 0x156a70eff28e7c44),
    ("LWF", "downey-avg", 0xc4cd80e04bdd0043, 0x83ca279bc62ac01f),
    ("Backfill", "actual", 0xe8caae92eba83ff8, 0x5244f8669a221c3a),
    ("Backfill", "maxrt", 0xa9ad785323fe95a8, 0x3160a1d15eaab50e),
    ("Backfill", "smith", 0xb122cad271fe446d, 0x35219c0f09322a81),
    (
        "Backfill",
        "smith-lock",
        0x852e280f3393ef06,
        0x2ca65ff3c434f7c6,
    ),
    (
        "Backfill",
        "gibbons",
        0xee693fde4ae9a869,
        0x58ccda4c3e7764c3,
    ),
    (
        "Backfill",
        "downey-avg",
        0xead947367f85e9cf,
        0x4c3849523d5f5874,
    ),
    ("EASY", "actual", 0x782ebb0779112b6c, 0x892346fe7cdcba87),
    ("EASY", "maxrt", 0x341878af6d7e1c9a, 0xba97af38afc094c5),
    ("EASY", "smith", 0x87aa1a2e92fd68c7, 0x75f1a18070f9c696),
    ("EASY", "smith-lock", 0x11e7e7b607bcce68, 0xe128673d84952ea8),
    ("EASY", "gibbons", 0xc3aa245270c39259, 0xf3a419c3ff49d288),
    ("EASY", "downey-avg", 0xc251a2f02d1ae2e6, 0x21640c1db0e0f0ac),
];

/// (algorithm, predictor, metrics fp, wait-error fp, runtime-error fp)
/// for `run_wait_prediction` over `toy(220, 32, 42)` — captured
/// pre-refactor.
const WAITTIME_LOCK: [(&str, &str, u64, u64, u64); 4] = [
    (
        "FCFS",
        "smith",
        0x1bed309a223e8290,
        0xf3bd92f0a2a38993,
        0x62920edc831b0c9b,
    ),
    (
        "LWF",
        "smith-lock",
        0xfb1fc91d164b7b0c,
        0xb00d97a199d90c5d,
        0x53e340ba3146013d,
    ),
    (
        "Backfill",
        "smith",
        0xce979c3d2e66e952,
        0x73e55166cb913b4f,
        0xdbe4e99d1875e10b,
    ),
    (
        "Backfill",
        "gibbons",
        0xce979c3d2e66e952,
        0xf24779ac3811266a,
        0x6989a38ee5184acb,
    ),
];

#[test]
fn scheduling_outputs_are_bit_identical_to_pre_refactor() {
    let wl = toy(300, 32, 41);
    for (alg, kind, metrics_fp, rt_fp) in SCHEDULING_LOCK {
        let out = run_scheduling(&wl, alg_for(alg), kind_for(kind));
        assert_eq!(
            fp_metrics(&out.metrics),
            metrics_fp,
            "{alg} + {kind}: schedule metrics drifted from pre-refactor capture"
        );
        assert_eq!(
            fp_stats(&out.runtime_errors),
            rt_fp,
            "{alg} + {kind}: runtime-error stats drifted from pre-refactor capture"
        );
    }
}

/// The observability layer must be a pure observer: with recording ON,
/// every locked cell still matches the pre-refactor capture bit for bit.
/// (Recording only touches a thread-local registry, so this runs the
/// full lock tables rather than sampling.)
#[test]
fn recording_does_not_perturb_locked_outputs() {
    qpredict_obs::set_recording(true);
    let wl = toy(300, 32, 41);
    for (alg, kind, metrics_fp, rt_fp) in SCHEDULING_LOCK {
        let out = run_scheduling(&wl, alg_for(alg), kind_for(kind));
        assert_eq!(
            fp_metrics(&out.metrics),
            metrics_fp,
            "{alg} + {kind}: recording perturbed schedule metrics"
        );
        assert_eq!(
            fp_stats(&out.runtime_errors),
            rt_fp,
            "{alg} + {kind}: recording perturbed runtime-error stats"
        );
    }
    let wl = toy(220, 32, 42);
    for (alg, kind, metrics_fp, wait_fp, rt_fp) in WAITTIME_LOCK {
        let out = run_wait_prediction(&wl, alg_for(alg), kind_for(kind));
        assert_eq!(
            fp_metrics(&out.metrics),
            metrics_fp,
            "{alg} + {kind}: recording perturbed outer-schedule metrics"
        );
        assert_eq!(
            fp_stats(&out.wait_errors),
            wait_fp,
            "{alg} + {kind}: recording perturbed wait-error stats"
        );
        assert_eq!(
            fp_stats(&out.runtime_errors),
            rt_fp,
            "{alg} + {kind}: recording perturbed runtime-error stats"
        );
    }
    qpredict_obs::set_recording(false);
}

#[test]
fn wait_prediction_outputs_are_bit_identical_to_pre_refactor() {
    let wl = toy(220, 32, 42);
    for (alg, kind, metrics_fp, wait_fp, rt_fp) in WAITTIME_LOCK {
        let out = run_wait_prediction(&wl, alg_for(alg), kind_for(kind));
        assert_eq!(
            fp_metrics(&out.metrics),
            metrics_fp,
            "{alg} + {kind}: outer-schedule metrics drifted"
        );
        assert_eq!(
            fp_stats(&out.wait_errors),
            wait_fp,
            "{alg} + {kind}: wait-error stats drifted"
        );
        assert_eq!(
            fp_stats(&out.runtime_errors),
            rt_fp,
            "{alg} + {kind}: runtime-error stats drifted"
        );
    }
}
