/root/repo/target/debug/deps/robustness-bb63332b254802a1.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-bb63332b254802a1: tests/robustness.rs

tests/robustness.rs:

# env-dep:CARGO_BIN_EXE_qpredict=/root/repo/target/debug/qpredict
