/root/repo/target/debug/deps/swf_and_workloads-9e5801fab4a186e9.d: tests/swf_and_workloads.rs Cargo.toml

/root/repo/target/debug/deps/libswf_and_workloads-9e5801fab4a186e9.rmeta: tests/swf_and_workloads.rs Cargo.toml

tests/swf_and_workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
