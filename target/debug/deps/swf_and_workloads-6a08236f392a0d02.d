/root/repo/target/debug/deps/swf_and_workloads-6a08236f392a0d02.d: tests/swf_and_workloads.rs

/root/repo/target/debug/deps/swf_and_workloads-6a08236f392a0d02: tests/swf_and_workloads.rs

tests/swf_and_workloads.rs:
