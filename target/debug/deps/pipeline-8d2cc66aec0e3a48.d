/root/repo/target/debug/deps/pipeline-8d2cc66aec0e3a48.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-8d2cc66aec0e3a48: tests/pipeline.rs

tests/pipeline.rs:
