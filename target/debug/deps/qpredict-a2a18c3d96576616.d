/root/repo/target/debug/deps/qpredict-a2a18c3d96576616.d: src/bin/qpredict.rs Cargo.toml

/root/repo/target/debug/deps/libqpredict-a2a18c3d96576616.rmeta: src/bin/qpredict.rs Cargo.toml

src/bin/qpredict.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
