/root/repo/target/debug/deps/cli-c82a6ca844657957.d: tests/cli.rs

/root/repo/target/debug/deps/cli-c82a6ca844657957: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_qpredict=/root/repo/target/debug/qpredict
