/root/repo/target/debug/deps/qpredict_search-3b1305ba5c30745f.d: crates/search/src/lib.rs crates/search/src/checkpoint.rs crates/search/src/encoding.rs crates/search/src/fitness.rs crates/search/src/ga.rs crates/search/src/greedy.rs crates/search/src/supervisor.rs crates/search/src/workloads.rs

/root/repo/target/debug/deps/qpredict_search-3b1305ba5c30745f: crates/search/src/lib.rs crates/search/src/checkpoint.rs crates/search/src/encoding.rs crates/search/src/fitness.rs crates/search/src/ga.rs crates/search/src/greedy.rs crates/search/src/supervisor.rs crates/search/src/workloads.rs

crates/search/src/lib.rs:
crates/search/src/checkpoint.rs:
crates/search/src/encoding.rs:
crates/search/src/fitness.rs:
crates/search/src/ga.rs:
crates/search/src/greedy.rs:
crates/search/src/supervisor.rs:
crates/search/src/workloads.rs:
