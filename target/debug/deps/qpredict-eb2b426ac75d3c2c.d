/root/repo/target/debug/deps/qpredict-eb2b426ac75d3c2c.d: src/bin/qpredict.rs

/root/repo/target/debug/deps/qpredict-eb2b426ac75d3c2c: src/bin/qpredict.rs

src/bin/qpredict.rs:
