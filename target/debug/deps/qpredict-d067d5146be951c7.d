/root/repo/target/debug/deps/qpredict-d067d5146be951c7.d: src/lib.rs

/root/repo/target/debug/deps/libqpredict-d067d5146be951c7.rmeta: src/lib.rs

src/lib.rs:
