/root/repo/target/debug/deps/qpredict-e96f64c67d7f3fba.d: src/bin/qpredict.rs Cargo.toml

/root/repo/target/debug/deps/libqpredict-e96f64c67d7f3fba.rmeta: src/bin/qpredict.rs Cargo.toml

src/bin/qpredict.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
