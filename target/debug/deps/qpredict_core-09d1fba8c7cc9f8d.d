/root/repo/target/debug/deps/qpredict_core-09d1fba8c7cc9f8d.d: crates/core/src/lib.rs crates/core/src/adapter.rs crates/core/src/forecast.rs crates/core/src/grid.rs crates/core/src/kind.rs crates/core/src/paper.rs crates/core/src/scheduling.rs crates/core/src/searched.rs crates/core/src/statewait.rs crates/core/src/tables.rs crates/core/src/template_search.rs crates/core/src/waittime.rs

/root/repo/target/debug/deps/libqpredict_core-09d1fba8c7cc9f8d.rlib: crates/core/src/lib.rs crates/core/src/adapter.rs crates/core/src/forecast.rs crates/core/src/grid.rs crates/core/src/kind.rs crates/core/src/paper.rs crates/core/src/scheduling.rs crates/core/src/searched.rs crates/core/src/statewait.rs crates/core/src/tables.rs crates/core/src/template_search.rs crates/core/src/waittime.rs

/root/repo/target/debug/deps/libqpredict_core-09d1fba8c7cc9f8d.rmeta: crates/core/src/lib.rs crates/core/src/adapter.rs crates/core/src/forecast.rs crates/core/src/grid.rs crates/core/src/kind.rs crates/core/src/paper.rs crates/core/src/scheduling.rs crates/core/src/searched.rs crates/core/src/statewait.rs crates/core/src/tables.rs crates/core/src/template_search.rs crates/core/src/waittime.rs

crates/core/src/lib.rs:
crates/core/src/adapter.rs:
crates/core/src/forecast.rs:
crates/core/src/grid.rs:
crates/core/src/kind.rs:
crates/core/src/paper.rs:
crates/core/src/scheduling.rs:
crates/core/src/searched.rs:
crates/core/src/statewait.rs:
crates/core/src/tables.rs:
crates/core/src/template_search.rs:
crates/core/src/waittime.rs:
