/root/repo/target/debug/deps/qpredict_sim-7fe91fd9ddc46d37.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/estimators.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/profile.rs crates/sim/src/scheduler.rs crates/sim/src/tests_support.rs crates/sim/src/timeline.rs

/root/repo/target/debug/deps/libqpredict_sim-7fe91fd9ddc46d37.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/estimators.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/profile.rs crates/sim/src/scheduler.rs crates/sim/src/tests_support.rs crates/sim/src/timeline.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/estimators.rs:
crates/sim/src/fault.rs:
crates/sim/src/metrics.rs:
crates/sim/src/profile.rs:
crates/sim/src/scheduler.rs:
crates/sim/src/tests_support.rs:
crates/sim/src/timeline.rs:
