/root/repo/target/debug/deps/qpredict-36341042f228b69d.d: src/lib.rs

/root/repo/target/debug/deps/qpredict-36341042f228b69d: src/lib.rs

src/lib.rs:
