/root/repo/target/debug/deps/qpredict-07ec28db8b2efcaf.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libqpredict-07ec28db8b2efcaf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
