/root/repo/target/debug/deps/paper-8073c4815702505b.d: crates/bench/src/bin/paper.rs Cargo.toml

/root/repo/target/debug/deps/libpaper-8073c4815702505b.rmeta: crates/bench/src/bin/paper.rs Cargo.toml

crates/bench/src/bin/paper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
