/root/repo/target/debug/deps/robustness-bc87ee14b498e0ee.d: tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-bc87ee14b498e0ee.rmeta: tests/robustness.rs Cargo.toml

tests/robustness.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_qpredict=placeholder:qpredict
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
