/root/repo/target/debug/deps/qpredict_bench-fcce61f1d82b54e3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/qpredict_bench-fcce61f1d82b54e3: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
