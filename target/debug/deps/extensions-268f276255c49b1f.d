/root/repo/target/debug/deps/extensions-268f276255c49b1f.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-268f276255c49b1f: tests/extensions.rs

tests/extensions.rs:
