/root/repo/target/debug/deps/qpredict_bench-057a34fab77b3235.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libqpredict_bench-057a34fab77b3235.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
