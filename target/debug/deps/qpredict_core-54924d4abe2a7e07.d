/root/repo/target/debug/deps/qpredict_core-54924d4abe2a7e07.d: crates/core/src/lib.rs crates/core/src/adapter.rs crates/core/src/forecast.rs crates/core/src/grid.rs crates/core/src/kind.rs crates/core/src/paper.rs crates/core/src/scheduling.rs crates/core/src/searched.rs crates/core/src/statewait.rs crates/core/src/tables.rs crates/core/src/template_search.rs crates/core/src/waittime.rs

/root/repo/target/debug/deps/libqpredict_core-54924d4abe2a7e07.rmeta: crates/core/src/lib.rs crates/core/src/adapter.rs crates/core/src/forecast.rs crates/core/src/grid.rs crates/core/src/kind.rs crates/core/src/paper.rs crates/core/src/scheduling.rs crates/core/src/searched.rs crates/core/src/statewait.rs crates/core/src/tables.rs crates/core/src/template_search.rs crates/core/src/waittime.rs

crates/core/src/lib.rs:
crates/core/src/adapter.rs:
crates/core/src/forecast.rs:
crates/core/src/grid.rs:
crates/core/src/kind.rs:
crates/core/src/paper.rs:
crates/core/src/scheduling.rs:
crates/core/src/searched.rs:
crates/core/src/statewait.rs:
crates/core/src/tables.rs:
crates/core/src/template_search.rs:
crates/core/src/waittime.rs:
