/root/repo/target/debug/deps/properties-e3d965e97bdd4f6f.d: crates/search/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-e3d965e97bdd4f6f.rmeta: crates/search/tests/properties.rs Cargo.toml

crates/search/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
