/root/repo/target/debug/deps/qpredict_predict-1e0b85745cf0ede2.d: crates/predict/src/lib.rs crates/predict/src/baseline.rs crates/predict/src/category.rs crates/predict/src/downey.rs crates/predict/src/error.rs crates/predict/src/estimators.rs crates/predict/src/fallback.rs crates/predict/src/gibbons.rs crates/predict/src/smith.rs crates/predict/src/template.rs Cargo.toml

/root/repo/target/debug/deps/libqpredict_predict-1e0b85745cf0ede2.rmeta: crates/predict/src/lib.rs crates/predict/src/baseline.rs crates/predict/src/category.rs crates/predict/src/downey.rs crates/predict/src/error.rs crates/predict/src/estimators.rs crates/predict/src/fallback.rs crates/predict/src/gibbons.rs crates/predict/src/smith.rs crates/predict/src/template.rs Cargo.toml

crates/predict/src/lib.rs:
crates/predict/src/baseline.rs:
crates/predict/src/category.rs:
crates/predict/src/downey.rs:
crates/predict/src/error.rs:
crates/predict/src/estimators.rs:
crates/predict/src/fallback.rs:
crates/predict/src/gibbons.rs:
crates/predict/src/smith.rs:
crates/predict/src/template.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
