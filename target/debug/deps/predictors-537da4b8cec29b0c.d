/root/repo/target/debug/deps/predictors-537da4b8cec29b0c.d: crates/bench/benches/predictors.rs Cargo.toml

/root/repo/target/debug/deps/libpredictors-537da4b8cec29b0c.rmeta: crates/bench/benches/predictors.rs Cargo.toml

crates/bench/benches/predictors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
