/root/repo/target/debug/deps/qpredict-534ce32d6c6ea070.d: src/bin/qpredict.rs

/root/repo/target/debug/deps/qpredict-534ce32d6c6ea070: src/bin/qpredict.rs

src/bin/qpredict.rs:
