/root/repo/target/debug/deps/paper-9698bbb6b6389519.d: crates/bench/src/bin/paper.rs

/root/repo/target/debug/deps/libpaper-9698bbb6b6389519.rmeta: crates/bench/src/bin/paper.rs

crates/bench/src/bin/paper.rs:
