/root/repo/target/debug/deps/qpredict_bench-6468b53a45249383.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libqpredict_bench-6468b53a45249383.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
