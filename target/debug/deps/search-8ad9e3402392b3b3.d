/root/repo/target/debug/deps/search-8ad9e3402392b3b3.d: crates/bench/benches/search.rs Cargo.toml

/root/repo/target/debug/deps/libsearch-8ad9e3402392b3b3.rmeta: crates/bench/benches/search.rs Cargo.toml

crates/bench/benches/search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
