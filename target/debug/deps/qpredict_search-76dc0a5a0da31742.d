/root/repo/target/debug/deps/qpredict_search-76dc0a5a0da31742.d: crates/search/src/lib.rs crates/search/src/checkpoint.rs crates/search/src/encoding.rs crates/search/src/fitness.rs crates/search/src/ga.rs crates/search/src/greedy.rs crates/search/src/supervisor.rs crates/search/src/workloads.rs

/root/repo/target/debug/deps/libqpredict_search-76dc0a5a0da31742.rmeta: crates/search/src/lib.rs crates/search/src/checkpoint.rs crates/search/src/encoding.rs crates/search/src/fitness.rs crates/search/src/ga.rs crates/search/src/greedy.rs crates/search/src/supervisor.rs crates/search/src/workloads.rs

crates/search/src/lib.rs:
crates/search/src/checkpoint.rs:
crates/search/src/encoding.rs:
crates/search/src/fitness.rs:
crates/search/src/ga.rs:
crates/search/src/greedy.rs:
crates/search/src/supervisor.rs:
crates/search/src/workloads.rs:
