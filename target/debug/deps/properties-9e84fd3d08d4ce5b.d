/root/repo/target/debug/deps/properties-9e84fd3d08d4ce5b.d: crates/search/tests/properties.rs

/root/repo/target/debug/deps/properties-9e84fd3d08d4ce5b: crates/search/tests/properties.rs

crates/search/tests/properties.rs:
