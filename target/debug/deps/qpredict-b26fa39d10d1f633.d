/root/repo/target/debug/deps/qpredict-b26fa39d10d1f633.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libqpredict-b26fa39d10d1f633.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
