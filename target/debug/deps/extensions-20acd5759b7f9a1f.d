/root/repo/target/debug/deps/extensions-20acd5759b7f9a1f.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-20acd5759b7f9a1f.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
