/root/repo/target/debug/deps/properties-dc9a8c082cbdf88a.d: crates/predict/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-dc9a8c082cbdf88a.rmeta: crates/predict/tests/properties.rs Cargo.toml

crates/predict/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
