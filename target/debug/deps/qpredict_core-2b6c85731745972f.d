/root/repo/target/debug/deps/qpredict_core-2b6c85731745972f.d: crates/core/src/lib.rs crates/core/src/adapter.rs crates/core/src/forecast.rs crates/core/src/grid.rs crates/core/src/kind.rs crates/core/src/paper.rs crates/core/src/scheduling.rs crates/core/src/searched.rs crates/core/src/statewait.rs crates/core/src/tables.rs crates/core/src/template_search.rs crates/core/src/waittime.rs Cargo.toml

/root/repo/target/debug/deps/libqpredict_core-2b6c85731745972f.rmeta: crates/core/src/lib.rs crates/core/src/adapter.rs crates/core/src/forecast.rs crates/core/src/grid.rs crates/core/src/kind.rs crates/core/src/paper.rs crates/core/src/scheduling.rs crates/core/src/searched.rs crates/core/src/statewait.rs crates/core/src/tables.rs crates/core/src/template_search.rs crates/core/src/waittime.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/adapter.rs:
crates/core/src/forecast.rs:
crates/core/src/grid.rs:
crates/core/src/kind.rs:
crates/core/src/paper.rs:
crates/core/src/scheduling.rs:
crates/core/src/searched.rs:
crates/core/src/statewait.rs:
crates/core/src/tables.rs:
crates/core/src/template_search.rs:
crates/core/src/waittime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
