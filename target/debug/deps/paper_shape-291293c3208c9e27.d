/root/repo/target/debug/deps/paper_shape-291293c3208c9e27.d: tests/paper_shape.rs

/root/repo/target/debug/deps/paper_shape-291293c3208c9e27: tests/paper_shape.rs

tests/paper_shape.rs:
