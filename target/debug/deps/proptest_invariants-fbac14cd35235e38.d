/root/repo/target/debug/deps/proptest_invariants-fbac14cd35235e38.d: tests/proptest_invariants.rs

/root/repo/target/debug/deps/proptest_invariants-fbac14cd35235e38: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
