/root/repo/target/debug/deps/qpredict_predict-7b2c58875b0bb672.d: crates/predict/src/lib.rs crates/predict/src/baseline.rs crates/predict/src/category.rs crates/predict/src/downey.rs crates/predict/src/error.rs crates/predict/src/estimators.rs crates/predict/src/fallback.rs crates/predict/src/gibbons.rs crates/predict/src/smith.rs crates/predict/src/template.rs

/root/repo/target/debug/deps/libqpredict_predict-7b2c58875b0bb672.rmeta: crates/predict/src/lib.rs crates/predict/src/baseline.rs crates/predict/src/category.rs crates/predict/src/downey.rs crates/predict/src/error.rs crates/predict/src/estimators.rs crates/predict/src/fallback.rs crates/predict/src/gibbons.rs crates/predict/src/smith.rs crates/predict/src/template.rs

crates/predict/src/lib.rs:
crates/predict/src/baseline.rs:
crates/predict/src/category.rs:
crates/predict/src/downey.rs:
crates/predict/src/error.rs:
crates/predict/src/estimators.rs:
crates/predict/src/fallback.rs:
crates/predict/src/gibbons.rs:
crates/predict/src/smith.rs:
crates/predict/src/template.rs:
