/root/repo/target/debug/deps/paper-2716cf46704082d6.d: crates/bench/src/bin/paper.rs Cargo.toml

/root/repo/target/debug/deps/libpaper-2716cf46704082d6.rmeta: crates/bench/src/bin/paper.rs Cargo.toml

crates/bench/src/bin/paper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
