/root/repo/target/debug/deps/qpredict_bench-90944a8312bd6a03.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libqpredict_bench-90944a8312bd6a03.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
