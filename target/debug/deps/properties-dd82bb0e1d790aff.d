/root/repo/target/debug/deps/properties-dd82bb0e1d790aff.d: crates/predict/tests/properties.rs

/root/repo/target/debug/deps/properties-dd82bb0e1d790aff: crates/predict/tests/properties.rs

crates/predict/tests/properties.rs:
