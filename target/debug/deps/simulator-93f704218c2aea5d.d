/root/repo/target/debug/deps/simulator-93f704218c2aea5d.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-93f704218c2aea5d.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
