/root/repo/target/debug/deps/cli-e9258dcea01dbe27.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-e9258dcea01dbe27.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_qpredict=placeholder:qpredict
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
