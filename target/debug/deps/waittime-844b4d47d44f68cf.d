/root/repo/target/debug/deps/waittime-844b4d47d44f68cf.d: crates/bench/benches/waittime.rs Cargo.toml

/root/repo/target/debug/deps/libwaittime-844b4d47d44f68cf.rmeta: crates/bench/benches/waittime.rs Cargo.toml

crates/bench/benches/waittime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
