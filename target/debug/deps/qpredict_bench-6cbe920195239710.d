/root/repo/target/debug/deps/qpredict_bench-6cbe920195239710.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libqpredict_bench-6cbe920195239710.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libqpredict_bench-6cbe920195239710.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
