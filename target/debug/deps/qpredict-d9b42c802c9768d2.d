/root/repo/target/debug/deps/qpredict-d9b42c802c9768d2.d: src/lib.rs

/root/repo/target/debug/deps/libqpredict-d9b42c802c9768d2.rlib: src/lib.rs

/root/repo/target/debug/deps/libqpredict-d9b42c802c9768d2.rmeta: src/lib.rs

src/lib.rs:
