/root/repo/target/debug/deps/properties-39e95e16c33b1946.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-39e95e16c33b1946: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
