/root/repo/target/debug/deps/qpredict_sim-885d568079504c0c.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/estimators.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/profile.rs crates/sim/src/scheduler.rs crates/sim/src/tests_support.rs crates/sim/src/timeline.rs Cargo.toml

/root/repo/target/debug/deps/libqpredict_sim-885d568079504c0c.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/estimators.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/profile.rs crates/sim/src/scheduler.rs crates/sim/src/tests_support.rs crates/sim/src/timeline.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/estimators.rs:
crates/sim/src/fault.rs:
crates/sim/src/metrics.rs:
crates/sim/src/profile.rs:
crates/sim/src/scheduler.rs:
crates/sim/src/tests_support.rs:
crates/sim/src/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
