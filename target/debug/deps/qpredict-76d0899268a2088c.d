/root/repo/target/debug/deps/qpredict-76d0899268a2088c.d: src/bin/qpredict.rs

/root/repo/target/debug/deps/libqpredict-76d0899268a2088c.rmeta: src/bin/qpredict.rs

src/bin/qpredict.rs:
