/root/repo/target/debug/deps/qpredict_workload-4ba47da2c15f89c1.d: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/compress.rs crates/workload/src/job.rs crates/workload/src/rng.rs crates/workload/src/stats.rs crates/workload/src/swf.rs crates/workload/src/symbols.rs crates/workload/src/synthetic/mod.rs crates/workload/src/synthetic/dist.rs crates/workload/src/synthetic/model.rs crates/workload/src/synthetic/sites.rs crates/workload/src/time.rs crates/workload/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libqpredict_workload-4ba47da2c15f89c1.rmeta: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/compress.rs crates/workload/src/job.rs crates/workload/src/rng.rs crates/workload/src/stats.rs crates/workload/src/swf.rs crates/workload/src/symbols.rs crates/workload/src/synthetic/mod.rs crates/workload/src/synthetic/dist.rs crates/workload/src/synthetic/model.rs crates/workload/src/synthetic/sites.rs crates/workload/src/time.rs crates/workload/src/workload.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/analysis.rs:
crates/workload/src/compress.rs:
crates/workload/src/job.rs:
crates/workload/src/rng.rs:
crates/workload/src/stats.rs:
crates/workload/src/swf.rs:
crates/workload/src/symbols.rs:
crates/workload/src/synthetic/mod.rs:
crates/workload/src/synthetic/dist.rs:
crates/workload/src/synthetic/model.rs:
crates/workload/src/synthetic/sites.rs:
crates/workload/src/time.rs:
crates/workload/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
