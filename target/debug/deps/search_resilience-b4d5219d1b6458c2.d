/root/repo/target/debug/deps/search_resilience-b4d5219d1b6458c2.d: tests/search_resilience.rs Cargo.toml

/root/repo/target/debug/deps/libsearch_resilience-b4d5219d1b6458c2.rmeta: tests/search_resilience.rs Cargo.toml

tests/search_resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
