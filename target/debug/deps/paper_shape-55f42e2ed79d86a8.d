/root/repo/target/debug/deps/paper_shape-55f42e2ed79d86a8.d: tests/paper_shape.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_shape-55f42e2ed79d86a8.rmeta: tests/paper_shape.rs Cargo.toml

tests/paper_shape.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
