/root/repo/target/debug/deps/qpredict_search-3b95a8bd01d683fc.d: crates/search/src/lib.rs crates/search/src/checkpoint.rs crates/search/src/encoding.rs crates/search/src/fitness.rs crates/search/src/ga.rs crates/search/src/greedy.rs crates/search/src/supervisor.rs crates/search/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libqpredict_search-3b95a8bd01d683fc.rmeta: crates/search/src/lib.rs crates/search/src/checkpoint.rs crates/search/src/encoding.rs crates/search/src/fitness.rs crates/search/src/ga.rs crates/search/src/greedy.rs crates/search/src/supervisor.rs crates/search/src/workloads.rs Cargo.toml

crates/search/src/lib.rs:
crates/search/src/checkpoint.rs:
crates/search/src/encoding.rs:
crates/search/src/fitness.rs:
crates/search/src/ga.rs:
crates/search/src/greedy.rs:
crates/search/src/supervisor.rs:
crates/search/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
