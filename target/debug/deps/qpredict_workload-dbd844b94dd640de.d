/root/repo/target/debug/deps/qpredict_workload-dbd844b94dd640de.d: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/compress.rs crates/workload/src/job.rs crates/workload/src/rng.rs crates/workload/src/stats.rs crates/workload/src/swf.rs crates/workload/src/symbols.rs crates/workload/src/synthetic/mod.rs crates/workload/src/synthetic/dist.rs crates/workload/src/synthetic/model.rs crates/workload/src/synthetic/sites.rs crates/workload/src/time.rs crates/workload/src/workload.rs

/root/repo/target/debug/deps/libqpredict_workload-dbd844b94dd640de.rmeta: crates/workload/src/lib.rs crates/workload/src/analysis.rs crates/workload/src/compress.rs crates/workload/src/job.rs crates/workload/src/rng.rs crates/workload/src/stats.rs crates/workload/src/swf.rs crates/workload/src/symbols.rs crates/workload/src/synthetic/mod.rs crates/workload/src/synthetic/dist.rs crates/workload/src/synthetic/model.rs crates/workload/src/synthetic/sites.rs crates/workload/src/time.rs crates/workload/src/workload.rs

crates/workload/src/lib.rs:
crates/workload/src/analysis.rs:
crates/workload/src/compress.rs:
crates/workload/src/job.rs:
crates/workload/src/rng.rs:
crates/workload/src/stats.rs:
crates/workload/src/swf.rs:
crates/workload/src/symbols.rs:
crates/workload/src/synthetic/mod.rs:
crates/workload/src/synthetic/dist.rs:
crates/workload/src/synthetic/model.rs:
crates/workload/src/synthetic/sites.rs:
crates/workload/src/time.rs:
crates/workload/src/workload.rs:
