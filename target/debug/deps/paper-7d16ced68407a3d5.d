/root/repo/target/debug/deps/paper-7d16ced68407a3d5.d: crates/bench/src/bin/paper.rs

/root/repo/target/debug/deps/paper-7d16ced68407a3d5: crates/bench/src/bin/paper.rs

crates/bench/src/bin/paper.rs:
