/root/repo/target/debug/deps/paper-e60b8f36539f5f7e.d: crates/bench/src/bin/paper.rs

/root/repo/target/debug/deps/paper-e60b8f36539f5f7e: crates/bench/src/bin/paper.rs

crates/bench/src/bin/paper.rs:
