/root/repo/target/debug/deps/search_resilience-2dc758d041ac3a38.d: tests/search_resilience.rs

/root/repo/target/debug/deps/search_resilience-2dc758d041ac3a38: tests/search_resilience.rs

tests/search_resilience.rs:
