/root/repo/target/debug/examples/resource_selection-2881a803820f3069.d: examples/resource_selection.rs

/root/repo/target/debug/examples/resource_selection-2881a803820f3069: examples/resource_selection.rs

examples/resource_selection.rs:
