/root/repo/target/debug/examples/scheduler_comparison-695c7889ad49d052.d: examples/scheduler_comparison.rs

/root/repo/target/debug/examples/scheduler_comparison-695c7889ad49d052: examples/scheduler_comparison.rs

examples/scheduler_comparison.rs:
