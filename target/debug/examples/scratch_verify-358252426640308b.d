/root/repo/target/debug/examples/scratch_verify-358252426640308b.d: examples/scratch_verify.rs

/root/repo/target/debug/examples/scratch_verify-358252426640308b: examples/scratch_verify.rs

examples/scratch_verify.rs:
