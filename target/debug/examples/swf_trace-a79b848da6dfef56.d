/root/repo/target/debug/examples/swf_trace-a79b848da6dfef56.d: examples/swf_trace.rs

/root/repo/target/debug/examples/swf_trace-a79b848da6dfef56: examples/swf_trace.rs

examples/swf_trace.rs:
