/root/repo/target/debug/examples/wait_estimator-28fb1c688ce0a11c.d: examples/wait_estimator.rs Cargo.toml

/root/repo/target/debug/examples/libwait_estimator-28fb1c688ce0a11c.rmeta: examples/wait_estimator.rs Cargo.toml

examples/wait_estimator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
