/root/repo/target/debug/examples/swf_trace-c7eb1ae405e926b7.d: examples/swf_trace.rs Cargo.toml

/root/repo/target/debug/examples/libswf_trace-c7eb1ae405e926b7.rmeta: examples/swf_trace.rs Cargo.toml

examples/swf_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
