/root/repo/target/debug/examples/quickstart-2e3834b77b1a8cb2.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-2e3834b77b1a8cb2: examples/quickstart.rs

examples/quickstart.rs:
