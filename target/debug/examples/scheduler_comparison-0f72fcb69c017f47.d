/root/repo/target/debug/examples/scheduler_comparison-0f72fcb69c017f47.d: examples/scheduler_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libscheduler_comparison-0f72fcb69c017f47.rmeta: examples/scheduler_comparison.rs Cargo.toml

examples/scheduler_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
