/root/repo/target/debug/examples/analyze_workload-4f4a248508f98061.d: examples/analyze_workload.rs Cargo.toml

/root/repo/target/debug/examples/libanalyze_workload-4f4a248508f98061.rmeta: examples/analyze_workload.rs Cargo.toml

examples/analyze_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
