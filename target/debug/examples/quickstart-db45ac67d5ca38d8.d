/root/repo/target/debug/examples/quickstart-db45ac67d5ca38d8.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-db45ac67d5ca38d8.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
