/root/repo/target/debug/examples/template_search-229ed5196ed61415.d: examples/template_search.rs Cargo.toml

/root/repo/target/debug/examples/libtemplate_search-229ed5196ed61415.rmeta: examples/template_search.rs Cargo.toml

examples/template_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
