/root/repo/target/debug/examples/analyze_workload-5f3695570cebffbc.d: examples/analyze_workload.rs

/root/repo/target/debug/examples/analyze_workload-5f3695570cebffbc: examples/analyze_workload.rs

examples/analyze_workload.rs:
