/root/repo/target/debug/examples/resource_selection-db0aa15438437c02.d: examples/resource_selection.rs Cargo.toml

/root/repo/target/debug/examples/libresource_selection-db0aa15438437c02.rmeta: examples/resource_selection.rs Cargo.toml

examples/resource_selection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
