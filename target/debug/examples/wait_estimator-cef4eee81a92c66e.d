/root/repo/target/debug/examples/wait_estimator-cef4eee81a92c66e.d: examples/wait_estimator.rs

/root/repo/target/debug/examples/wait_estimator-cef4eee81a92c66e: examples/wait_estimator.rs

examples/wait_estimator.rs:
