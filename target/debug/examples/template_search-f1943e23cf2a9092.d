/root/repo/target/debug/examples/template_search-f1943e23cf2a9092.d: examples/template_search.rs

/root/repo/target/debug/examples/template_search-f1943e23cf2a9092: examples/template_search.rs

examples/template_search.rs:
