(function() {
    const implementors = Object.fromEntries([["qpredict",[]],["qpredict_core",[["impl&lt;P: RunTimePredictor&gt; RuntimeEstimator for <a class=\"struct\" href=\"qpredict_core/adapter/struct.PredictorEstimator.html\" title=\"struct qpredict_core::adapter::PredictorEstimator\">PredictorEstimator</a>&lt;P&gt;",0]]],["qpredict_sim",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[15,253,20]}