(function() {
    const implementors = Object.fromEntries([["qpredict",[]],["qpredict_core",[["impl RunTimePredictor for <a class=\"struct\" href=\"qpredict_core/kind/struct.BoxedPredictor.html\" title=\"struct qpredict_core::kind::BoxedPredictor\">BoxedPredictor</a>",0]]],["qpredict_predict",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[15,199,24]}