(function() {
    const implementors = Object.fromEntries([["qpredict_workload",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Sub.html\" title=\"trait core::ops::arith::Sub\">Sub</a> for <a class=\"struct\" href=\"qpredict_workload/time/struct.Dur.html\" title=\"struct qpredict_workload::time::Dur\">Dur</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Sub.html\" title=\"trait core::ops::arith::Sub\">Sub</a> for <a class=\"struct\" href=\"qpredict_workload/time/struct.Time.html\" title=\"struct qpredict_workload::time::Time\">Time</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Sub.html\" title=\"trait core::ops::arith::Sub\">Sub</a>&lt;<a class=\"struct\" href=\"qpredict_workload/time/struct.Dur.html\" title=\"struct qpredict_workload::time::Dur\">Dur</a>&gt; for <a class=\"struct\" href=\"qpredict_workload/time/struct.Time.html\" title=\"struct qpredict_workload::time::Time\">Time</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[980]}