(function() {
    const implementors = Object.fromEntries([["qpredict_search",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/convert/trait.From.html\" title=\"trait core::convert::From\">From</a>&lt;<a class=\"enum\" href=\"qpredict_search/checkpoint/enum.CheckpointError.html\" title=\"enum qpredict_search::checkpoint::CheckpointError\">CheckpointError</a>&gt; for <a class=\"enum\" href=\"qpredict_search/ga/enum.SearchError.html\" title=\"enum qpredict_search::ga::SearchError\">SearchError</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[470]}