/root/repo/target/release/examples/wait_estimator-6c7534d3e96afea2.d: examples/wait_estimator.rs

/root/repo/target/release/examples/wait_estimator-6c7534d3e96afea2: examples/wait_estimator.rs

examples/wait_estimator.rs:
