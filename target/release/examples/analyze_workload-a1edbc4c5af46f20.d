/root/repo/target/release/examples/analyze_workload-a1edbc4c5af46f20.d: examples/analyze_workload.rs

/root/repo/target/release/examples/analyze_workload-a1edbc4c5af46f20: examples/analyze_workload.rs

examples/analyze_workload.rs:
