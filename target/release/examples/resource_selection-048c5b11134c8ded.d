/root/repo/target/release/examples/resource_selection-048c5b11134c8ded.d: examples/resource_selection.rs

/root/repo/target/release/examples/resource_selection-048c5b11134c8ded: examples/resource_selection.rs

examples/resource_selection.rs:
