/root/repo/target/release/examples/swf_trace-1acc2b5f31b0f9e4.d: examples/swf_trace.rs

/root/repo/target/release/examples/swf_trace-1acc2b5f31b0f9e4: examples/swf_trace.rs

examples/swf_trace.rs:
