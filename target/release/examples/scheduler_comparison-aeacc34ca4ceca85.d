/root/repo/target/release/examples/scheduler_comparison-aeacc34ca4ceca85.d: examples/scheduler_comparison.rs

/root/repo/target/release/examples/scheduler_comparison-aeacc34ca4ceca85: examples/scheduler_comparison.rs

examples/scheduler_comparison.rs:
