/root/repo/target/release/examples/quickstart-c4fd0fda8aa3b378.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-c4fd0fda8aa3b378: examples/quickstart.rs

examples/quickstart.rs:
