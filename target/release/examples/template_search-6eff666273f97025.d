/root/repo/target/release/examples/template_search-6eff666273f97025.d: examples/template_search.rs

/root/repo/target/release/examples/template_search-6eff666273f97025: examples/template_search.rs

examples/template_search.rs:
