/root/repo/target/release/deps/proptest_invariants-f13250b9463e6a95.d: tests/proptest_invariants.rs

/root/repo/target/release/deps/proptest_invariants-f13250b9463e6a95: tests/proptest_invariants.rs

tests/proptest_invariants.rs:
