/root/repo/target/release/deps/extensions-a0a7ad8f66375af7.d: tests/extensions.rs

/root/repo/target/release/deps/extensions-a0a7ad8f66375af7: tests/extensions.rs

tests/extensions.rs:
