/root/repo/target/release/deps/qpredict_core-b06e71146a565064.d: crates/core/src/lib.rs crates/core/src/adapter.rs crates/core/src/forecast.rs crates/core/src/grid.rs crates/core/src/kind.rs crates/core/src/paper.rs crates/core/src/scheduling.rs crates/core/src/searched.rs crates/core/src/statewait.rs crates/core/src/tables.rs crates/core/src/template_search.rs crates/core/src/waittime.rs

/root/repo/target/release/deps/libqpredict_core-b06e71146a565064.rlib: crates/core/src/lib.rs crates/core/src/adapter.rs crates/core/src/forecast.rs crates/core/src/grid.rs crates/core/src/kind.rs crates/core/src/paper.rs crates/core/src/scheduling.rs crates/core/src/searched.rs crates/core/src/statewait.rs crates/core/src/tables.rs crates/core/src/template_search.rs crates/core/src/waittime.rs

/root/repo/target/release/deps/libqpredict_core-b06e71146a565064.rmeta: crates/core/src/lib.rs crates/core/src/adapter.rs crates/core/src/forecast.rs crates/core/src/grid.rs crates/core/src/kind.rs crates/core/src/paper.rs crates/core/src/scheduling.rs crates/core/src/searched.rs crates/core/src/statewait.rs crates/core/src/tables.rs crates/core/src/template_search.rs crates/core/src/waittime.rs

crates/core/src/lib.rs:
crates/core/src/adapter.rs:
crates/core/src/forecast.rs:
crates/core/src/grid.rs:
crates/core/src/kind.rs:
crates/core/src/paper.rs:
crates/core/src/scheduling.rs:
crates/core/src/searched.rs:
crates/core/src/statewait.rs:
crates/core/src/tables.rs:
crates/core/src/template_search.rs:
crates/core/src/waittime.rs:
