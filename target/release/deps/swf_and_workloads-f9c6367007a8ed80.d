/root/repo/target/release/deps/swf_and_workloads-f9c6367007a8ed80.d: tests/swf_and_workloads.rs

/root/repo/target/release/deps/swf_and_workloads-f9c6367007a8ed80: tests/swf_and_workloads.rs

tests/swf_and_workloads.rs:
