/root/repo/target/release/deps/qpredict-a27f8a6f6004f606.d: src/bin/qpredict.rs

/root/repo/target/release/deps/qpredict-a27f8a6f6004f606: src/bin/qpredict.rs

src/bin/qpredict.rs:
