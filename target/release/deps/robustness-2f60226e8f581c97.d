/root/repo/target/release/deps/robustness-2f60226e8f581c97.d: tests/robustness.rs

/root/repo/target/release/deps/robustness-2f60226e8f581c97: tests/robustness.rs

tests/robustness.rs:

# env-dep:CARGO_BIN_EXE_qpredict=/root/repo/target/release/qpredict
