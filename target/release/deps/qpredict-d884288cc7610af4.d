/root/repo/target/release/deps/qpredict-d884288cc7610af4.d: src/lib.rs

/root/repo/target/release/deps/qpredict-d884288cc7610af4: src/lib.rs

src/lib.rs:
