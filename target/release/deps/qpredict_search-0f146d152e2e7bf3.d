/root/repo/target/release/deps/qpredict_search-0f146d152e2e7bf3.d: crates/search/src/lib.rs crates/search/src/checkpoint.rs crates/search/src/encoding.rs crates/search/src/fitness.rs crates/search/src/ga.rs crates/search/src/greedy.rs crates/search/src/supervisor.rs crates/search/src/workloads.rs

/root/repo/target/release/deps/libqpredict_search-0f146d152e2e7bf3.rlib: crates/search/src/lib.rs crates/search/src/checkpoint.rs crates/search/src/encoding.rs crates/search/src/fitness.rs crates/search/src/ga.rs crates/search/src/greedy.rs crates/search/src/supervisor.rs crates/search/src/workloads.rs

/root/repo/target/release/deps/libqpredict_search-0f146d152e2e7bf3.rmeta: crates/search/src/lib.rs crates/search/src/checkpoint.rs crates/search/src/encoding.rs crates/search/src/fitness.rs crates/search/src/ga.rs crates/search/src/greedy.rs crates/search/src/supervisor.rs crates/search/src/workloads.rs

crates/search/src/lib.rs:
crates/search/src/checkpoint.rs:
crates/search/src/encoding.rs:
crates/search/src/fitness.rs:
crates/search/src/ga.rs:
crates/search/src/greedy.rs:
crates/search/src/supervisor.rs:
crates/search/src/workloads.rs:
