/root/repo/target/release/deps/qpredict_bench-f2e7038126a9044d.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libqpredict_bench-f2e7038126a9044d.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libqpredict_bench-f2e7038126a9044d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
