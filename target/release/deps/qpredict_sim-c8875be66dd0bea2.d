/root/repo/target/release/deps/qpredict_sim-c8875be66dd0bea2.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/estimators.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/profile.rs crates/sim/src/scheduler.rs crates/sim/src/tests_support.rs crates/sim/src/timeline.rs

/root/repo/target/release/deps/libqpredict_sim-c8875be66dd0bea2.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/estimators.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/profile.rs crates/sim/src/scheduler.rs crates/sim/src/tests_support.rs crates/sim/src/timeline.rs

/root/repo/target/release/deps/libqpredict_sim-c8875be66dd0bea2.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/estimators.rs crates/sim/src/fault.rs crates/sim/src/metrics.rs crates/sim/src/profile.rs crates/sim/src/scheduler.rs crates/sim/src/tests_support.rs crates/sim/src/timeline.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/estimators.rs:
crates/sim/src/fault.rs:
crates/sim/src/metrics.rs:
crates/sim/src/profile.rs:
crates/sim/src/scheduler.rs:
crates/sim/src/tests_support.rs:
crates/sim/src/timeline.rs:
