/root/repo/target/release/deps/qpredict-000a4104350d5904.d: src/lib.rs

/root/repo/target/release/deps/libqpredict-000a4104350d5904.rlib: src/lib.rs

/root/repo/target/release/deps/libqpredict-000a4104350d5904.rmeta: src/lib.rs

src/lib.rs:
