/root/repo/target/release/deps/cli-3b64faeb79921c14.d: tests/cli.rs

/root/repo/target/release/deps/cli-3b64faeb79921c14: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_qpredict=/root/repo/target/release/qpredict
