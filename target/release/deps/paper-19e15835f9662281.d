/root/repo/target/release/deps/paper-19e15835f9662281.d: crates/bench/src/bin/paper.rs

/root/repo/target/release/deps/paper-19e15835f9662281: crates/bench/src/bin/paper.rs

crates/bench/src/bin/paper.rs:
