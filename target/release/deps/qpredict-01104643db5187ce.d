/root/repo/target/release/deps/qpredict-01104643db5187ce.d: src/bin/qpredict.rs

/root/repo/target/release/deps/qpredict-01104643db5187ce: src/bin/qpredict.rs

src/bin/qpredict.rs:
