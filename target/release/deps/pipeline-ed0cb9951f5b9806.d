/root/repo/target/release/deps/pipeline-ed0cb9951f5b9806.d: tests/pipeline.rs

/root/repo/target/release/deps/pipeline-ed0cb9951f5b9806: tests/pipeline.rs

tests/pipeline.rs:
