/root/repo/target/release/deps/qpredict_predict-7f94cd0b65510ac5.d: crates/predict/src/lib.rs crates/predict/src/baseline.rs crates/predict/src/category.rs crates/predict/src/downey.rs crates/predict/src/error.rs crates/predict/src/estimators.rs crates/predict/src/fallback.rs crates/predict/src/gibbons.rs crates/predict/src/smith.rs crates/predict/src/template.rs

/root/repo/target/release/deps/libqpredict_predict-7f94cd0b65510ac5.rlib: crates/predict/src/lib.rs crates/predict/src/baseline.rs crates/predict/src/category.rs crates/predict/src/downey.rs crates/predict/src/error.rs crates/predict/src/estimators.rs crates/predict/src/fallback.rs crates/predict/src/gibbons.rs crates/predict/src/smith.rs crates/predict/src/template.rs

/root/repo/target/release/deps/libqpredict_predict-7f94cd0b65510ac5.rmeta: crates/predict/src/lib.rs crates/predict/src/baseline.rs crates/predict/src/category.rs crates/predict/src/downey.rs crates/predict/src/error.rs crates/predict/src/estimators.rs crates/predict/src/fallback.rs crates/predict/src/gibbons.rs crates/predict/src/smith.rs crates/predict/src/template.rs

crates/predict/src/lib.rs:
crates/predict/src/baseline.rs:
crates/predict/src/category.rs:
crates/predict/src/downey.rs:
crates/predict/src/error.rs:
crates/predict/src/estimators.rs:
crates/predict/src/fallback.rs:
crates/predict/src/gibbons.rs:
crates/predict/src/smith.rs:
crates/predict/src/template.rs:
