/root/repo/target/release/deps/paper_shape-eed66c789076ca51.d: tests/paper_shape.rs

/root/repo/target/release/deps/paper_shape-eed66c789076ca51: tests/paper_shape.rs

tests/paper_shape.rs:
